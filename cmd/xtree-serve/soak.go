package main

// soak.go is the soak/chaos self-check behind `xtree-serve -soak-smoke`
// (and the CI soak job): it drives a real server through the full
// lifecycle the snapshot feature exists for — load with fault-injected
// simulations, graceful drain with a cache snapshot, restart, warm —
// and fails unless the serving SLOs hold on both sides of the restart
// and the warmed cache actually answers the post-restart traffic.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"xtreesim/internal/server"
)

// Soak SLOs.  The p99 bound is deliberately generous — CI machines are
// slow and shared; the bound exists to catch hangs and collapse, not to
// benchmark — while the error and recovery bounds are exact: nothing
// about overload or restart may surface as a client-visible error.
const (
	soakMaxShedRate = 0.5             // ≤ half the closed-loop requests may shed
	soakMaxP99      = 5 * time.Second // per-request p99, both phases
)

// runSoakSmoke exercises load → drain+snapshot → restart+warm → load.
// snapPath "" means a temp file.
func runSoakSmoke(requests, treeN, shapes int, snapPath string) error {
	if snapPath == "" {
		dir, err := os.MkdirTemp("", "xtree-soak")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		snapPath = filepath.Join(dir, "cache.snap")
	}
	cfg := server.Config{
		SnapshotPath: snapPath,
		AccessLog:    false,
		Logger:       log.New(io.Discard, "", 0),
	}

	// Phase 1: cold server under embed load plus fault-injected
	// simulations.
	s1 := server.New(cfg)
	if err := s1.Start(); err != nil {
		return err
	}
	rep1, err := soakPhase(s1.URL(), requests, treeN, shapes)
	if err != nil {
		s1.Shutdown(context.Background())
		return fmt.Errorf("phase 1: %w", err)
	}
	fmt.Printf("soak-smoke: phase 1 (cold): %s\n", rep1)
	st1 := s1.Stats()
	if st1.Misses == 0 {
		s1.Shutdown(context.Background())
		return fmt.Errorf("phase 1 ran no computes; the load never reached the engine")
	}

	// Mid-run restart: drain (writes the snapshot), then boot a fresh
	// server on the same path (warms from it).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if fi, err := os.Stat(snapPath); err != nil {
		return fmt.Errorf("drain wrote no snapshot: %w", err)
	} else if fi.Size() == 0 {
		return fmt.Errorf("drain wrote an empty snapshot")
	}

	s2 := server.New(cfg)
	if err := s2.Start(); err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	if warm := s2.Stats(); warm.WarmLoaded == 0 {
		return fmt.Errorf("restarted server warmed nothing from the snapshot")
	}

	// Phase 2: the same request mix against the warmed server.  Every
	// shape was cached before the restart, so the engine must answer
	// from the warmed cache without a single fresh compute.
	rep2, err := soakPhase(s2.URL(), requests, treeN, shapes)
	if err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}
	fmt.Printf("soak-smoke: phase 2 (warm): %s\n", rep2)
	st2 := s2.Stats()
	if st2.Misses != 0 {
		return fmt.Errorf("warmed server ran %d computes; cache-hit recovery failed", st2.Misses)
	}
	if rep2.CacheHits != rep2.OK {
		return fmt.Errorf("warmed server answered %d of %d OKs from cache", rep2.CacheHits, rep2.OK)
	}
	fmt.Printf("soak-smoke: PASS (snapshot %s: loaded %d records, phase-2 hit rate 100%%)\n",
		snapPath, st2.WarmLoaded)
	return nil
}

// soakPhase runs one load phase — closed-loop embed traffic, then a
// burst of fault-injected simulate requests — and enforces the SLOs.
func soakPhase(url string, requests, treeN, shapes int) (*server.LoadReport, error) {
	rep, err := server.RunLoad(server.LoadConfig{
		BaseURL:        url,
		Concurrency:    4,
		Requests:       requests,
		TreeN:          treeN,
		DistinctShapes: shapes,
		Seed:           42,
	})
	if err != nil {
		return nil, err
	}
	if rep.Errors != 0 {
		return rep, fmt.Errorf("%d requests errored (SLO: 0): %s", rep.Errors, rep)
	}
	if rate := float64(rep.Shed) / float64(rep.Requests); rate > soakMaxShedRate {
		return rep, fmt.Errorf("shed rate %.2f over the %.2f SLO: %s", rate, soakMaxShedRate, rep)
	}
	if rep.P99 > soakMaxP99 {
		return rep, fmt.Errorf("p99 %s over the %s SLO: %s", rep.P99, soakMaxP99, rep)
	}
	// Chaos leg: simulations over a lossy network (drops, corruptions,
	// retransmits) must still complete and deliver.
	for i := 0; i < 4; i++ {
		if err := soakSimulate(url, treeN, int64(i)); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// soakSimulate drives one fault-injected /v1/simulate request.
func soakSimulate(url string, treeN int, seed int64) error {
	body, err := json.Marshal(server.SimulateRequest{
		Tree:     &server.TreeSpec{Family: "random", N: treeN, Seed: server.Seed(seed + 1)},
		Workload: server.WorkloadBroadcast,
		Faults: &server.FaultSpec{
			Seed:        seed + 1,
			DropProb:    0.2,
			CorruptProb: 0.05,
			MaxRetries:  16,
			BackoffBase: 1,
		},
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(url+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fault-injected simulate status %d: %s", resp.StatusCode, data)
	}
	var sr server.SimulateResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return fmt.Errorf("simulate body: %w", err)
	}
	if sr.Sim.Delivered == 0 {
		return fmt.Errorf("fault-injected simulate delivered nothing: %s", data)
	}
	return nil
}
