package main

// smoke.go is the `-smoke` self-check behind `make serve-smoke` and the
// CI serve job: it boots real servers on ephemeral ports and walks the
// acceptance path end to end — health, a valid embed with the Theorem 1
// bounds intact over the wire, non-empty Prometheus metrics, a saturated
// admission queue answering 429 + Retry-After, and a graceful shutdown
// that drains every in-flight request.  Any violation exits non-zero.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"xtreesim/internal/server"
)

func runSmoke() error {
	if err := smokeServePath(); err != nil {
		return fmt.Errorf("serve path: %w", err)
	}
	if err := smokeShedding(); err != nil {
		return fmt.Errorf("load shedding: %w", err)
	}
	if err := smokeGracefulDrain(); err != nil {
		return fmt.Errorf("graceful drain: %w", err)
	}
	return nil
}

func postEmbed(url string, body interface{}) (*http.Response, []byte, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url+"/v1/embed", "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data, err
}

// smokeServePath: healthz, one valid embed with the paper's bounds, and
// a metrics scrape that actually contains the serving metrics.
func smokeServePath() error {
	s := server.New(server.Config{Version: "smoke"})
	if err := s.Start(); err != nil {
		return err
	}
	defer shutdown(s)
	url := s.URL()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		return err
	}
	var hr server.HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&hr)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("healthz decode: %w", err)
	}
	if resp.StatusCode != 200 || hr.Status != "ok" {
		return fmt.Errorf("healthz: status=%d body=%+v", resp.StatusCode, hr)
	}

	resp, data, err := postEmbed(url, server.EmbedRequest{
		Tree: &server.TreeSpec{Family: "random", N: 1008, Seed: server.Seed(42)},
	})
	if err != nil {
		return err
	}
	if resp.StatusCode != 200 {
		return fmt.Errorf("embed: status %d: %s", resp.StatusCode, data)
	}
	var er server.EmbedResponse
	if err := json.Unmarshal(data, &er); err != nil {
		return fmt.Errorf("embed decode: %w", err)
	}
	if len(er.Items) != 1 || er.Items[0].Error != "" {
		return fmt.Errorf("embed items: %s", data)
	}
	if d, l := er.Items[0].Dilation, er.Items[0].MaxLoad; d > 3 || l > 16 {
		return fmt.Errorf("Theorem 1 bounds violated over the wire: dilation=%d load=%d", d, l)
	}

	resp, err = http.Get(url + "/metrics")
	if err != nil {
		return err
	}
	mdata, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(mdata)
	if len(strings.TrimSpace(text)) == 0 {
		return fmt.Errorf("metrics: empty exposition")
	}
	for _, want := range []string{
		"xtreesim_http_requests_total",
		"xtreesim_http_request_duration_seconds_bucket",
		"xtreesim_http_shed_total",
		"xtreesim_engine_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics: missing %q", want)
		}
	}
	return nil
}

// smokeShedding: one slot, no queue, a flood of concurrent embeds — the
// overflow must shed with 429 and a Retry-After hint while at least one
// request is served.
func smokeShedding() error {
	s := server.New(server.Config{MaxConcurrent: 1, MaxQueue: 0})
	if err := s.Start(); err != nil {
		return err
	}
	defer shutdown(s)
	url := s.URL()

	const flood = 16
	var wg sync.WaitGroup
	type outcome struct {
		status     int
		retryAfter string
	}
	outcomes := make(chan outcome, flood)
	start := make(chan struct{})
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds keep the requests from collapsing into one
			// cache entry (or one coalesced compute), and the start
			// barrier makes them hit the single admission slot together:
			// without both, a fast embedder drains the flood one by one
			// and nothing sheds.
			raw, _ := json.Marshal(server.EmbedRequest{
				Tree: &server.TreeSpec{Family: "random", N: 8000, Seed: server.Seed(int64(i) + 1)},
			})
			<-start
			resp, err := http.Post(url+"/v1/embed", "application/json", bytes.NewReader(raw))
			if err != nil {
				outcomes <- outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes <- outcome{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	close(start)
	wg.Wait()
	close(outcomes)
	var ok, shed int
	for o := range outcomes {
		switch o.status {
		case 200:
			ok++
		case 429:
			shed++
			if o.retryAfter == "" {
				return fmt.Errorf("429 without Retry-After")
			}
		default:
			return fmt.Errorf("unexpected status %d", o.status)
		}
	}
	if ok == 0 || shed == 0 {
		return fmt.Errorf("flood of %d: ok=%d shed=%d; want both > 0", flood, ok, shed)
	}
	fmt.Printf("serve-smoke: shedding ok (%d served, %d shed with Retry-After)\n", ok, shed)
	return nil
}

// smokeGracefulDrain: in-flight requests across a Shutdown must all
// complete with 200 — zero dropped requests.
func smokeGracefulDrain() error {
	s := server.New(server.Config{MaxConcurrent: 4, MaxQueue: 16})
	if err := s.Start(); err != nil {
		return err
	}
	url := s.URL()

	const n = 8
	statuses := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			raw, _ := json.Marshal(server.EmbedRequest{
				Tree: &server.TreeSpec{Family: "random", N: 4000, Seed: server.Seed(int64(seed))},
			})
			resp, err := http.Post(url+"/v1/embed", "application/json", bytes.NewReader(raw))
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the flood be admitted
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	wg.Wait()
	close(statuses)
	for st := range statuses {
		if st != 200 {
			return fmt.Errorf("in-flight request finished with %d during shutdown", st)
		}
	}
	fmt.Printf("serve-smoke: graceful drain ok (%d in-flight requests all completed)\n", n)
	return nil
}

func shutdown(s *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}
