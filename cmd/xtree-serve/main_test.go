package main

import (
	"strings"
	"testing"

	"xtreesim/internal/buildinfo"
)

// TestSmoke runs the full -smoke self-check in-process: the same gate
// `make serve-smoke` and the CI serve job use.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke boots three servers; skipped in -short")
	}
	if err := runSmoke(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenInProcess(t *testing.T) {
	if err := runLoadgen("", 2, 10, 255, 2, true); err != nil {
		t.Fatal(err)
	}
}

func TestVersionString(t *testing.T) {
	v := buildinfo.Version()
	if !strings.HasPrefix(v, "xtreesim") || !strings.Contains(v, "go1") {
		t.Errorf("version %q", v)
	}
}
