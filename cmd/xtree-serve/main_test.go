package main

import (
	"strings"
	"testing"

	"xtreesim/internal/buildinfo"
)

// TestSmoke runs the full -smoke self-check in-process: the same gate
// `make serve-smoke` and the CI serve job use.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke boots three servers; skipped in -short")
	}
	if err := runSmoke(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadgenInProcess(t *testing.T) {
	if err := runLoadgen("", 2, 10, 255, 2, true, 0, "", 0); err != nil {
		t.Fatal(err)
	}
}

// TestScaleRunPath exercises the measured half of -scale-smoke (boot,
// drive, throughput) at both concurrencies regardless of CPU count; the
// ratio gate itself only runs on multi-core machines.
func TestScaleRunPath(t *testing.T) {
	for _, conc := range []int{1, 8} {
		thpt, err := scaleRun(conc, 24, 255, 2)
		if err != nil {
			t.Fatalf("c=%d: %v", conc, err)
		}
		if thpt <= 0 {
			t.Fatalf("c=%d: throughput %f", conc, thpt)
		}
	}
}

func TestVersionString(t *testing.T) {
	v := buildinfo.Version()
	if !strings.HasPrefix(v, "xtreesim") || !strings.Contains(v, "go1") {
		t.Errorf("version %q", v)
	}
}
