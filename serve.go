package xtreesim

// serve.go surfaces the embedding-as-a-service subsystem
// (internal/server): a stdlib-only HTTP front end over the shared batch
// engine with admission control, load shedding, per-request deadlines
// and a Prometheus /metrics endpoint.  `cmd/xtree-serve` is the
// production binary; this façade is for embedding the server in another
// process (or an httptest harness).

import (
	"xtreesim/internal/metrics"
	"xtreesim/internal/server"
)

type (
	// Server is one serving process over the JSON API
	// (POST /v1/embed, POST /v1/simulate, GET /healthz, GET /metrics).
	// Create with NewServer, boot with Start, stop with Shutdown.
	Server = server.Server
	// ServerConfig configures NewServer; the zero value serves on an
	// ephemeral localhost port with one admission slot per CPU.
	ServerConfig = server.Config
	// LoadConfig configures RunLoad.
	LoadConfig = server.LoadConfig
	// LoadReport is RunLoad's client-side measurement: throughput,
	// latency percentiles, shed counts.
	LoadReport = server.LoadReport
	// LatencyHistogram is a mergeable log-spaced histogram with
	// p50/p95/p99 extraction, shared by /metrics and the load
	// generator.
	LatencyHistogram = metrics.Histogram
	// HistogramSummary is a point-in-time digest of a LatencyHistogram.
	HistogramSummary = metrics.HistogramSummary
)

// NewServer builds a server (not yet listening):
//
//	srv := xtreesim.NewServer(xtreesim.ServerConfig{Addr: ":8080"})
//	if err := srv.Start(); err != nil { ... }
//	defer srv.Shutdown(ctx)
func NewServer(cfg ServerConfig) *Server { return server.New(cfg) }

// RunLoad drives a running server with the closed-loop load generator
// and reports what the clients measured.
func RunLoad(cfg LoadConfig) (*LoadReport, error) { return server.RunLoad(cfg) }

// NewLatencyHistogram returns the serving-default latency histogram
// (log-spaced buckets from 100µs to 100s, 10 per decade).
func NewLatencyHistogram() *LatencyHistogram { return metrics.NewLatencyHistogram() }

// NewHistogram returns a histogram with a custom log-spaced layout.
func NewHistogram(lo, hi float64, perDecade int) *LatencyHistogram {
	return metrics.NewHistogram(lo, hi, perDecade)
}
