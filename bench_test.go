package xtreesim_test

// One benchmark per experiment table of EXPERIMENTS.md (E1–E10); run with
//
//	go test -bench=. -benchmem
//
// The per-op numbers measure the cost of regenerating each claim:
// embedding construction (E1), the derived embeddings (E2–E3), the
// universal graph (E4), the separator lemmas (E5), the hypercube maps
// (E6), the N-sets (E7), the instrumented worst case (E8), the baselines
// (E9) and the machine simulation (E10).

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"xtreesim"

	"xtreesim/internal/bintree"
	"xtreesim/internal/bitstr"
	"xtreesim/internal/hypercube"
	"xtreesim/internal/separator"
	"xtreesim/internal/xtree"
)

func mustTree(b *testing.B, f xtreesim.Family, n int, seed int64) *xtreesim.Tree {
	b.Helper()
	t, err := xtreesim.GenerateTree(f, n, seed)
	if err != nil {
		b.Fatal(err)
	}
	return t
}

func mustEmbed(b *testing.B, t *xtreesim.Tree) *xtreesim.Result {
	b.Helper()
	res, err := xtreesim.Embed(t)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTheorem1 regenerates E1: algorithm X-TREE on every family.
func BenchmarkTheorem1(b *testing.B) {
	for _, f := range xtreesim.Families {
		for _, r := range []int{5, 7, 9} {
			n := int(xtreesim.Capacity(r))
			b.Run(fmt.Sprintf("%s/r=%d", f, r), func(b *testing.B) {
				tree := mustTree(b, f, n, 1)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := mustEmbed(b, tree)
					if res.MaxLoad() > xtreesim.LoadTarget {
						b.Fatalf("load %d", res.MaxLoad())
					}
				}
			})
		}
	}
}

// BenchmarkTheorem2 regenerates E2: the injective derivation.
func BenchmarkTheorem2(b *testing.B) {
	tree := mustTree(b, xtreesim.FamilyRandom, int(xtreesim.Capacity(7)), 2)
	res := mustEmbed(b, tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj, err := xtreesim.EmbedInjective(res)
		if err != nil {
			b.Fatal(err)
		}
		_ = inj
	}
}

// BenchmarkTheorem3 regenerates E3: the hypercube composition.
func BenchmarkTheorem3(b *testing.B) {
	tree := mustTree(b, xtreesim.FamilyRandom, int(xtreesim.Capacity(7)), 3)
	res := mustEmbed(b, tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hc := xtreesim.EmbedHypercube(res)
		_ = hc
	}
}

// BenchmarkTheorem4 regenerates E4: universal-graph construction and one
// spanning-tree embedding.
func BenchmarkTheorem4(b *testing.B) {
	b.Run("build/G_496", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u, err := xtreesim.NewUniversalGraph(496)
			if err != nil {
				b.Fatal(err)
			}
			if u.MaxDegree() > xtreesim.UniversalDegreeBound {
				b.Fatal("degree bound broken")
			}
		}
	})
	b.Run("embed/G_496", func(b *testing.B) {
		u, err := xtreesim.NewUniversalGraph(496)
		if err != nil {
			b.Fatal(err)
		}
		tree := mustTree(b, xtreesim.FamilyRandom, 496, 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.Embed(tree); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLemma12 regenerates E5: one separator split each.
func BenchmarkLemma12(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	tr := bintree.RandomAttachment(4096, rng)
	rt := separator.Build(tr.Neighbors, tr.Root(), nil)
	b.Run("lemma1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := separator.Lemma1(rt, 2048, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lemma2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := separator.Lemma2(rt, 2048, 1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLemma3 regenerates E6: the χ map and its inverse.
func BenchmarkLemma3(b *testing.B) {
	const r = 20
	a := bitstr.MustParse("01011010010110100101")
	b.Run("chi", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hypercube.Chi(a, r) == 0 {
				b.Fatal("zero image")
			}
		}
	})
	b.Run("chi-inverse", func(b *testing.B) {
		img := hypercube.Chi(a, r)
		for i := 0; i < b.N; i++ {
			if _, ok := hypercube.ChiInverseLevel(img, r); !ok {
				b.Fatal("inverse failed")
			}
		}
	})
}

// BenchmarkFigure2 regenerates E7: N-set enumeration and membership.
func BenchmarkFigure2(b *testing.B) {
	x := xtree.New(30)
	a := bitstr.MustParse("010110100101101001011")
	s, _ := a.Successor()
	b.Run("nset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(x.NSet(a)) == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("inn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !x.InN(a, s) {
				b.Fatal("neighbor not in N")
			}
		}
	})
}

// BenchmarkImbalanceWorstCase regenerates E8: the path guest, whose
// initial imbalance is maximal.
func BenchmarkImbalanceWorstCase(b *testing.B) {
	tree := mustTree(b, xtreesim.FamilyPath, int(xtreesim.Capacity(8)), 0)
	for i := 0; i < b.N; i++ {
		res, err := xtreesim.Embed(tree, xtreesim.WithImbalanceStats())
		if err != nil {
			b.Fatal(err)
		}
		if last := res.Stats.MaxImbalance[len(res.Stats.MaxImbalance)-1]; last > 1 {
			b.Fatalf("imbalance %d", last)
		}
	}
}

// BenchmarkBaselines regenerates E9: the packing baselines.
func BenchmarkBaselines(b *testing.B) {
	tree := mustTree(b, xtreesim.FamilyRandom, int(xtreesim.Capacity(7)), 9)
	b.Run("dfs-pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xtreesim.Baseline(tree, xtreesim.MethodDFSPack); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bfs-pack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xtreesim.Baseline(tree, xtreesim.MethodBFSPack); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("monien", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = mustEmbed(b, tree)
		}
	})
}

// BenchmarkNetsim regenerates E10: one divide-and-conquer wave on the
// simulated X-tree machine.
func BenchmarkNetsim(b *testing.B) {
	tree := mustTree(b, xtreesim.FamilyComplete, int(xtreesim.Capacity(5)), 0)
	res := mustEmbed(b, tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := xtreesim.SimulateOnXTree(res, xtreesim.NewDivideConquer(tree, 1))
		if err != nil {
			b.Fatal(err)
		}
		if sim.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkEmbedBatch contrasts three ways of embedding the same batch
// of 64 random 1008-node guests: the serial loop, the worker-pool engine
// with caching disabled (pure parallel speedup — ≥ 2× expected on 4
// cores), and a cache-warm engine answering an isomorphic second pass by
// remapping alone (hit rate reported as hit%, expected 100).
func BenchmarkEmbedBatch(b *testing.B) {
	const batch = 64
	trees := make([]*xtreesim.Tree, batch)
	for i := range trees {
		trees[i] = mustTree(b, xtreesim.FamilyRandom, 1008, int64(i))
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, tr := range trees {
				mustEmbed(b, tr)
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := xtreesim.NewEngine(xtreesim.EngineConfig{CacheSize: -1})
		defer eng.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range eng.EmbedBatch(context.Background(), trees) {
				if it.Err != nil {
					b.Fatal(it.Err)
				}
			}
		}
	})
	b.Run("cached-isomorphic", func(b *testing.B) {
		eng := xtreesim.NewEngine(xtreesim.EngineConfig{CacheSize: 2 * batch})
		defer eng.Close()
		for _, it := range eng.EmbedBatch(context.Background(), trees) {
			if it.Err != nil {
				b.Fatal(it.Err)
			}
		}
		iso := make([]*xtreesim.Tree, batch)
		for i := range iso {
			iso[i] = relabelIso(b, trees[i], int64(1000+i))
		}
		warm := eng.Stats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, it := range eng.EmbedBatch(context.Background(), iso) {
				if it.Err != nil {
					b.Fatal(it.Err)
				}
			}
		}
		b.StopTimer()
		// Hit rate of the measured second passes alone, excluding the
		// warm-up misses.
		s := eng.Stats()
		hits, misses := s.Hits-warm.Hits, s.Misses-warm.Misses
		b.ReportMetric(float64(hits)/float64(hits+misses)*100, "hit%")
	})
}

// BenchmarkXTreeDistance measures the implicit distance oracle used by
// every dilation check.
func BenchmarkXTreeDistance(b *testing.B) {
	x := xtree.New(30)
	a := bitstr.MustParse("010110100101101001011010011011")
	c := bitstr.MustParse("010110100101101001011010010001")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Distance(a, c) <= 0 {
			b.Fatal("bad distance")
		}
	}
}
