module xtreesim

go 1.22
