package xtreesim

import (
	"fmt"

	"xtreesim/internal/separator"
)

// TreeSplit is the outcome of one of the paper's separator lemmas applied
// to a whole guest tree: Part2 lists ≈A nodes; S1 and S2 are the small
// separator sets (all part-crossing edges join S1 to S2, each S_i is
// collinear in its part, and both designated nodes lie in S1 ∪ S2).
type TreeSplit = separator.Split

// SplitLemma1 applies Lemma 1 to a guest tree rooted at its own root with
// second designated node r2: |S1| ≤ 4, |S2| ≤ 2, balance error at most
// ⌊(A+1)/3⌋.  Requires 3·n > 4·A.
func SplitLemma1(t *Tree, r2 int32, A int) (TreeSplit, error) {
	if t.N() == 0 {
		return TreeSplit{}, fmt.Errorf("xtreesim: empty tree")
	}
	rt := separator.Build(t.Neighbors, t.Root(), nil)
	return separator.Lemma1(rt, r2, A)
}

// SplitLemma2 applies Lemma 2: |S1|, |S2| ≤ 4, balance error at most
// ⌊(A+4)/9⌋, for any 0 ≤ A ≤ n.
func SplitLemma2(t *Tree, r2 int32, A int) (TreeSplit, error) {
	if t.N() == 0 {
		return TreeSplit{}, fmt.Errorf("xtreesim: empty tree")
	}
	rt := separator.Build(t.Neighbors, t.Root(), nil)
	return separator.Lemma2(rt, r2, A)
}

// ValidateSplit re-checks a split against the lemma postconditions
// (lemma = 1 or 2).
func ValidateSplit(t *Tree, r2 int32, A int, s TreeSplit, lemma int) error {
	rt := separator.Build(t.Neighbors, t.Root(), nil)
	switch lemma {
	case 1:
		return separator.Validate(rt, r2, A, s, 4, 2, separator.Lemma1Bound(A))
	case 2:
		return separator.Validate(rt, r2, A, s, 4, 4, separator.Lemma2Bound(A))
	}
	return fmt.Errorf("xtreesim: unknown lemma %d", lemma)
}
