package xtreesim_test

// Coverage for the PR-1 surface: the functional-options façade (Embed /
// Baseline), the cancellable simulator entry point, and the batch
// engine exposed through xtreesim.NewEngine / xtreesim.EmbedBatch.

import (
	"context"
	"math/rand"
	"testing"

	"xtreesim"

	"xtreesim/internal/bintree"
)

func genTree(t testing.TB, f xtreesim.Family, n int, seed int64) *xtreesim.Tree {
	t.Helper()
	tr, err := xtreesim.GenerateTree(f, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// relabelIso returns an isomorphic copy of tr: permuted node numbers and
// mirrored child sides.
func relabelIso(t testing.TB, tr *xtreesim.Tree, seed int64) *xtreesim.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := tr.N()
	perm := make([]int32, n)
	for i, v := range rng.Perm(n) {
		perm[i] = int32(v)
	}
	parent := make([]int32, n)
	side := make([]byte, n)
	for v := int32(0); v < int32(n); v++ {
		p := tr.Parent(v)
		if p == bintree.None {
			parent[perm[v]] = bintree.None
			continue
		}
		parent[perm[v]] = perm[p]
		if tr.Right(p) != v {
			side[perm[v]] = 1
		}
	}
	out, err := bintree.NewFromParents(parent, side)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sameAssignment(t *testing.T, a, b *xtreesim.Result) {
	t.Helper()
	if len(a.Assignment) != len(b.Assignment) {
		t.Fatalf("assignment lengths differ: %d vs %d", len(a.Assignment), len(b.Assignment))
	}
	for v := range a.Assignment {
		if a.Assignment[v] != b.Assignment[v] {
			t.Fatalf("node %d: %v vs %v", v, a.Assignment[v], b.Assignment[v])
		}
	}
}

// TestOptionsMatchDeprecatedWrappers pins the redesign contract: the old
// entry points are exactly the new options spelled differently.
func TestOptionsMatchDeprecatedWrappers(t *testing.T) {
	tree := genTree(t, xtreesim.FamilyRandom, 496, 11)

	strictNew, err := xtreesim.Embed(tree, xtreesim.WithStrict())
	if err != nil {
		t.Fatal(err)
	}
	strictOld, err := xtreesim.EmbedStrict(tree)
	if err != nil {
		t.Fatal(err)
	}
	sameAssignment(t, strictNew, strictOld)

	intoNew, err := xtreesim.Embed(tree, xtreesim.WithHeight(7))
	if err != nil {
		t.Fatal(err)
	}
	intoOld, err := xtreesim.EmbedInto(tree, 7)
	if err != nil {
		t.Fatal(err)
	}
	if intoNew.Host.Height() != 7 {
		t.Errorf("WithHeight host = X(%d)", intoNew.Host.Height())
	}
	sameAssignment(t, intoNew, intoOld)

	plain, err := xtreesim.Embed(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := xtreesim.Verify(plain); err != nil {
		t.Error(err)
	}
}

func TestBaselineMethods(t *testing.T) {
	tree := genTree(t, xtreesim.FamilyBST, 496, 6)

	for _, tc := range []struct {
		m    xtreesim.BaselineMethod
		opts []xtreesim.BaselineOption
		old  *xtreesim.BaselineResult
	}{
		{xtreesim.MethodDFSPack, nil, xtreesim.BaselineDFSPack(tree)},
		{xtreesim.MethodBFSPack, nil, xtreesim.BaselineBFSPack(tree)},
		{xtreesim.MethodNaive, []xtreesim.BaselineOption{xtreesim.WithBaselineHeight(6)},
			xtreesim.BaselineNaive(tree, 6)},
		{xtreesim.MethodRandom, []xtreesim.BaselineOption{xtreesim.WithBaselineSeed(9)},
			xtreesim.BaselineRandom(tree, 9)},
	} {
		got, err := xtreesim.Baseline(tree, tc.m, tc.opts...)
		if err != nil {
			t.Fatalf("%v: %v", tc.m, err)
		}
		if got.Name != tc.m.String() {
			t.Errorf("%v: result named %q", tc.m, got.Name)
		}
		if len(got.Assignment) != len(tc.old.Assignment) {
			t.Fatalf("%v: assignment sizes differ", tc.m)
		}
		for v := range got.Assignment {
			if got.Assignment[v] != tc.old.Assignment[v] {
				t.Fatalf("%v: node %d differs from deprecated wrapper", tc.m, v)
			}
		}
	}

	// MethodNaive without a height picks the optimal one.
	naive, err := xtreesim.Baseline(tree, xtreesim.MethodNaive)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Host.Height() != xtreesim.OptimalHeight(tree.N()) {
		t.Errorf("default naive host = X(%d)", naive.Host.Height())
	}

	if _, err := xtreesim.Baseline(tree, xtreesim.BaselineMethod(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestSimulateContextCancel(t *testing.T) {
	tree := genTree(t, xtreesim.FamilyComplete, 1008, 0)
	res, err := xtreesim.Embed(tree)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	place := make([]int32, tree.N())
	for v, a := range res.Assignment {
		place[v] = int32(a.ID())
	}
	_, err = xtreesim.SimulateContext(ctx,
		xtreesim.SimConfig{Host: res.Host.AsGraph(), Place: place},
		xtreesim.NewDivideConquer(tree, 1))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The uncancelled path still works and matches Simulate.
	sim, err := xtreesim.SimulateOnXTree(res, xtreesim.NewDivideConquer(tree, 1))
	if err != nil {
		t.Fatal(err)
	}
	if sim.Delivered == 0 {
		t.Error("nothing delivered")
	}
}

func TestFacadeEngine(t *testing.T) {
	eng := xtreesim.NewEngine(xtreesim.EngineConfig{
		Workers: 2,
		Options: xtreesim.NewEmbedConfig(xtreesim.WithStrict()),
	})
	defer eng.Close()

	trees := []*xtreesim.Tree{
		genTree(t, xtreesim.FamilyRandom, 496, 1),
		genTree(t, xtreesim.FamilyCaterpillar, 496, 2),
	}
	items := eng.EmbedBatch(context.Background(), trees)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if err := xtreesim.CheckInvariants(it.Result); err != nil {
			t.Errorf("item %d: %v", i, err)
		}
	}
	// An isomorphic second pass hits the cache and the remapped result
	// still satisfies every invariant.
	iso := []*xtreesim.Tree{relabelIso(t, trees[0], 5), relabelIso(t, trees[1], 6)}
	for i, it := range eng.EmbedBatch(context.Background(), iso) {
		if it.Err != nil {
			t.Fatalf("iso %d: %v", i, it.Err)
		}
		if !it.CacheHit {
			t.Errorf("iso %d missed the cache", i)
		}
		if err := xtreesim.CheckInvariants(it.Result); err != nil {
			t.Errorf("iso %d: %v", i, err)
		}
	}
	s := eng.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Errorf("hit rate %v", s.HitRate())
	}
}

func TestPackageLevelEmbedBatch(t *testing.T) {
	trees := []*xtreesim.Tree{
		genTree(t, xtreesim.FamilyZigzag, 240, 1),
		genTree(t, xtreesim.FamilyBroom, 240, 2),
	}
	before := xtreesim.DefaultEngine().Stats()
	items := xtreesim.EmbedBatch(context.Background(), trees)
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if err := xtreesim.Verify(it.Result); err != nil {
			t.Errorf("item %d: %v", i, err)
		}
	}
	after := xtreesim.DefaultEngine().Stats()
	if after.Completed-before.Completed != 2 {
		t.Errorf("default engine completed %d jobs, want 2", after.Completed-before.Completed)
	}
	if xtreesim.CanonicalHash(trees[0]) == xtreesim.CanonicalHash(trees[1]) {
		t.Error("distinct families share a canonical hash")
	}
}
