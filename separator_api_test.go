package xtreesim_test

import (
	"testing"

	"xtreesim"
)

func TestPublicSplitLemmas(t *testing.T) {
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyBST, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []int{1, 50, 250, 370} {
		s1, err := xtreesim.SplitLemma1(tree, 123, a)
		if err != nil {
			t.Fatalf("lemma1 A=%d: %v", a, err)
		}
		if err := xtreesim.ValidateSplit(tree, 123, a, s1, 1); err != nil {
			t.Errorf("lemma1 A=%d: %v", a, err)
		}
	}
	for _, a := range []int{0, 1, 250, 499, 500} {
		s2, err := xtreesim.SplitLemma2(tree, 123, a)
		if err != nil {
			t.Fatalf("lemma2 A=%d: %v", a, err)
		}
		if err := xtreesim.ValidateSplit(tree, 123, a, s2, 2); err != nil {
			t.Errorf("lemma2 A=%d: %v", a, err)
		}
	}
	// Out-of-precondition targets must error.
	if _, err := xtreesim.SplitLemma1(tree, 123, 400); err == nil {
		t.Error("lemma1 accepted A beyond 3n/4")
	}
	if _, err := xtreesim.SplitLemma2(tree, 123, 501); err == nil {
		t.Error("lemma2 accepted A > n")
	}
	if err := xtreesim.ValidateSplit(tree, 123, 10, xtreesim.TreeSplit{}, 3); err == nil {
		t.Error("unknown lemma number accepted")
	}
}

func TestPublicSerializationAndChecker(t *testing.T) {
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyBroom, 496, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := xtreesim.Embed(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := xtreesim.CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
}

func TestPublicUniversalAny(t *testing.T) {
	u := xtreesim.UniversalForAtLeast(300)
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyZigzag, 300, 4)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := u.EmbedAny(tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.IsSubgraph(tree, assign); err != nil {
		t.Error(err)
	}
}

func TestPublicExchangeWorkload(t *testing.T) {
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyComplete, 127, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := xtreesim.SimulateOnTree(tree, xtreesim.NewExchange(tree, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 4 {
		t.Errorf("exchange makespan %d, want 4", res.Cycles)
	}
}
