package xtreesim

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestWithTracingRecordsPhases drives Embed through the option path and
// asserts the tracer captured the construction's phase spans under one
// "embed" root, and that both TraceExport formats render them.
func TestWithTracingRecordsPhases(t *testing.T) {
	tr := NewTracer(1)
	tree, err := GenerateTree(FamilyRandom, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Embed(tree, WithTracing(tr)); err != nil {
		t.Fatal(err)
	}

	counts := map[string]int{}
	var rootTrace string
	for _, sd := range tr.Spans() {
		counts[sd.Name]++
		if sd.Name == "embed" {
			rootTrace = sd.Trace
		}
		if rootTrace != "" && sd.Trace != rootTrace {
			t.Fatalf("span %q escaped to trace %s", sd.Name, sd.Trace)
		}
	}
	for _, name := range []string{"embed", "embed.host-build", "embed.round", "embed.separator"} {
		if counts[name] == 0 {
			t.Errorf("missing %q spans: %v", name, counts)
		}
	}

	var jsonl bytes.Buffer
	if err := TraceExport(&jsonl, tr, "jsonl"); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&jsonl)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var sd SpanData
		if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		lines++
	}
	if lines != len(tr.Spans()) {
		t.Errorf("JSONL exported %d lines, ring holds %d", lines, len(tr.Spans()))
	}

	var chrome bytes.Buffer
	if err := TraceExport(&chrome, tr, "chrome"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) {
		t.Error("chrome export lacks traceEvents")
	}
	if err := TraceExport(&chrome, tr, "protobuf"); err == nil {
		t.Error("unknown format should error")
	}
}

// TestEmbedContextJoinsCallerSpan asserts EmbedContext nests the phase
// spans under a span the caller already opened, and that the simulate
// bridge joins the same trace — the facade route to the one-trace
// embed+simulate story.
func TestEmbedContextJoinsCallerSpan(t *testing.T) {
	tr := NewTracer(1)
	ctx, root := tr.Root(context.Background(), "job")
	tree, err := GenerateTree(FamilyComplete, 127, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EmbedContext(ctx, tree)
	if err != nil {
		t.Fatal(err)
	}
	sim := SpanFromContext(ctx).Child("simulate")
	if sim == nil {
		t.Fatal("sampled context yielded nil child span")
	}
	if _, err := SimulateOnXTree(res, NewBroadcast(tree), WithObserver(NewSpanObserver(sim))); err != nil {
		t.Fatal(err)
	}
	sim.End()
	root.End()

	counts := map[string]int{}
	for _, sd := range tr.Spans() {
		if sd.Trace != root.TraceID() {
			t.Fatalf("span %q in foreign trace %s", sd.Name, sd.Trace)
		}
		counts[sd.Name]++
	}
	for _, name := range []string{"job", "embed.host-build", "simulate", "sim.hop", "sim.deliver"} {
		if counts[name] == 0 {
			t.Errorf("missing %q spans: %v", name, counts)
		}
	}
}
