// Command quickstart shows the 30-second tour of the library: generate a
// binary tree, embed it into its optimal X-tree (Theorem 1), and print the
// measured dilation, load factor and expansion, plus the derived injective
// (Theorem 2) and hypercube (Theorem 3) embeddings.
package main

import (
	"fmt"
	"log"

	"xtreesim"
)

func main() {
	// A random 1008-node binary tree: 1008 = 16·(2^6 − 1), the exact
	// capacity of the X-tree of height 5.
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyRandom, 1008, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Theorem 1: dilation ≤ 3, load ≤ 16, optimal expansion.
	res, err := xtreesim.Embed(tree)
	if err != nil {
		log.Fatal(err)
	}
	if err := xtreesim.Verify(res); err != nil {
		log.Fatal(err)
	}
	rep := res.Embedding().Summarize()
	fmt.Printf("Theorem 1: X(%d) host, dilation=%d load=%d host-vertices=%d\n",
		res.Host.Height(), rep.Dilation, rep.MaxLoad, rep.HostN)

	// Theorem 2: injective into X(r+4) with dilation ≤ 11.
	inj, err := xtreesim.EmbedInjective(res)
	if err != nil {
		log.Fatal(err)
	}
	irep := inj.Embedding().Summarize()
	fmt.Printf("Theorem 2: X(%d) host, dilation=%d injective=%v\n",
		inj.Host.Height(), irep.Dilation, irep.Injective)

	// Theorem 3: hypercube with load 16 and dilation ≤ 4.
	hc := xtreesim.EmbedHypercube(res)
	hrep := hc.Embedding().Summarize()
	fmt.Printf("Theorem 3: Q_%d host, dilation=%d load=%d\n",
		hc.Host.Dim(), hrep.Dilation, hrep.MaxLoad)

	// Where did the guest root land?
	fmt.Printf("guest root %d sits on X-tree vertex %v\n",
		tree.Root(), res.Assignment[tree.Root()])
}
