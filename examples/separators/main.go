// Command separators demonstrates the tree-separation lemmas (§2) on
// their own: balanced binary-tree partitioning with constant-size
// separators is useful well beyond the embedding (parallel tree
// contraction, partitioning workloads across machines).  For a random
// tree and a sweep of targets A it splits off ≈A nodes with Lemma 1
// (error ≤ ⌊(A+1)/3⌋, separators 4+2) and Lemma 2 (error ≤ ⌊(A+4)/9⌋,
// separators 4+4) and validates every postcondition.
package main

import (
	"fmt"
	"log"

	"xtreesim"
)

func main() {
	const n = 10000
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyRandom, n, 1991)
	if err != nil {
		log.Fatal(err)
	}
	r2 := int32(n / 2)
	fmt.Printf("guest: %d-node random binary tree, designated nodes root and %d\n\n", n, r2)
	fmt.Printf("%8s %14s %14s %10s %10s\n", "A", "lemma1 |part2|", "lemma2 |part2|", "err1", "err2")
	for _, a := range []int{10, 100, 1000, 2500, 5000, 7000} {
		s1, err := xtreesim.SplitLemma1(tree, r2, a)
		if err != nil {
			log.Fatal(err)
		}
		if err := xtreesim.ValidateSplit(tree, r2, a, s1, 1); err != nil {
			log.Fatalf("lemma 1 invalid at A=%d: %v", a, err)
		}
		s2, err := xtreesim.SplitLemma2(tree, r2, a)
		if err != nil {
			log.Fatal(err)
		}
		if err := xtreesim.ValidateSplit(tree, r2, a, s2, 2); err != nil {
			log.Fatalf("lemma 2 invalid at A=%d: %v", a, err)
		}
		fmt.Printf("%8d %14d %14d %10d %10d\n",
			a, len(s1.Part2), len(s2.Part2), len(s1.Part2)-a, len(s2.Part2)-a)
	}
	fmt.Println("\nall splits validated: separator sizes, crossing edges, collinearity")

	// The separators themselves are tiny:
	s, _ := xtreesim.SplitLemma2(tree, r2, 5000)
	fmt.Printf("example A=5000: S1=%v S2=%v (case %s)\n", s.S1, s.S2, s.Case)
}
