// Command faults demonstrates the simulator's fault-injection layer: the
// same divide-and-conquer program runs on the simulated X-tree machine
// through the Monien embedding while the network gets progressively worse
// — per-hop message drops rise and two links die mid-run.  The delivery
// layer (ack/retransmission with exponential backoff, BFS rerouting
// around dead links) keeps the program correct; the printed counters show
// what that robustness costs in cycles.
package main

import (
	"fmt"
	"log"

	"xtreesim"
)

func main() {
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyRandom, 1008, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := xtreesim.Embed(tree)
	if err != nil {
		log.Fatal(err)
	}
	ideal, err := xtreesim.SimulateOnTree(tree, xtreesim.NewDivideConquer(tree, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ideal binary-tree machine: %d cycles (fault-free)\n\n", ideal.Cycles)
	fmt.Println("drop%  cycles  slowdown  drops  retransmits  reroutes")

	// Two scheduled link kills on the host, the same for every rate.
	hostEdges := res.Host.AsGraph().Edges()
	kills := []xtreesim.LinkKill{
		{U: int32(hostEdges[3][0]), V: int32(hostEdges[3][1]), Cycle: 5},
		{U: int32(hostEdges[17][0]), V: int32(hostEdges[17][1]), Cycle: 9},
	}
	for _, rate := range []float64{0, 0.01, 0.05, 0.1} {
		plan := &xtreesim.FaultPlan{Seed: 7, DropProb: rate, LinkKills: kills, MaxRetries: 16}
		sim, err := xtreesim.SimulateOnXTree(res, xtreesim.NewDivideConquer(tree, 1),
			xtreesim.WithFaults(plan))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4.0f%%  %6d  %7.2fx  %5d  %11d  %8d\n",
			rate*100, sim.Cycles, float64(sim.Cycles)/float64(ideal.Cycles),
			sim.Drops, sim.Retransmits, sim.Reroutes)
	}
}
