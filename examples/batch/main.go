// Batch embedding: run a mixed bag of guest trees through the concurrent
// engine, then hand it an isomorphic second wave — relabeled, mirrored
// copies of the first — and watch the canonical-tree cache answer every
// one of them by remapping instead of re-running algorithm X-TREE.
//
//	go run ./examples/batch
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"xtreesim"

	"xtreesim/internal/bintree"
)

// relabel returns an isomorphic copy of tr: node v becomes perm[v] and
// every child swaps sides.  The embedding cannot tell them apart — and
// the engine's cache exploits exactly that.
func relabel(tr *xtreesim.Tree, seed int64) *xtreesim.Tree {
	rng := rand.New(rand.NewSource(seed))
	n := tr.N()
	perm := make([]int32, n)
	for i, v := range rng.Perm(n) {
		perm[i] = int32(v)
	}
	parent := make([]int32, n)
	side := make([]byte, n)
	for v := int32(0); v < int32(n); v++ {
		p := tr.Parent(v)
		if p == bintree.None {
			parent[perm[v]] = bintree.None
			continue
		}
		parent[perm[v]] = perm[p]
		if tr.Right(p) != v {
			side[perm[v]] = 1
		}
	}
	out, err := bintree.NewFromParents(parent, side)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	eng := xtreesim.NewEngine(xtreesim.EngineConfig{}) // one worker per CPU
	defer eng.Close()

	// Wave 1: 32 random 1008-node guests, all distinct shapes.
	const batch = 32
	trees := make([]*xtreesim.Tree, batch)
	for i := range trees {
		tr, err := xtreesim.GenerateTree(xtreesim.FamilyRandom, 1008, int64(i))
		if err != nil {
			log.Fatal(err)
		}
		trees[i] = tr
	}
	start := time.Now()
	items := eng.EmbedBatch(context.Background(), trees)
	cold := time.Since(start)
	maxDil := 0
	for _, it := range items {
		if it.Err != nil {
			log.Fatal(it.Err)
		}
		if d := it.Result.Dilation(); d > maxDil {
			maxDil = d
		}
	}
	fmt.Printf("wave 1: %d guests embedded in %v (max dilation %d)\n",
		batch, cold.Round(time.Millisecond), maxDil)

	// Wave 2: the same shapes in disguise.
	iso := make([]*xtreesim.Tree, batch)
	for i := range iso {
		iso[i] = relabel(trees[i], int64(1000+i))
	}
	start = time.Now()
	items = eng.EmbedBatch(context.Background(), iso)
	warm := time.Since(start)
	hits := 0
	for _, it := range items {
		if it.Err != nil {
			log.Fatal(it.Err)
		}
		if it.CacheHit {
			hits++
		}
		// A remapped assignment satisfies the paper's conditions
		// verbatim — re-check one to prove it.
		if err := xtreesim.CheckInvariants(it.Result); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wave 2: %d/%d cache hits in %v\n", hits, batch, warm.Round(time.Millisecond))

	s := eng.Stats()
	fmt.Printf("engine: %d workers, %d embeddings cached, hit rate %.0f%%, %v spent embedding\n",
		s.Workers, s.CacheLen, s.HitRate()*100, time.Duration(s.EmbedNanos).Round(time.Millisecond))
}
