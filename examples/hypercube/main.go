// Command hypercube demonstrates the §3 corollaries: porting a tree
// program to a hypercube machine.  It embeds binary trees into their
// optimal hypercubes via Theorem 3 (load 16, dilation ≤ 4) and contrasts
// this with the classic inorder embedding (only for complete trees,
// dilation 2) that the theorem generalizes from.
package main

import (
	"fmt"
	"log"

	"xtreesim"
)

func main() {
	fmt.Println("Theorem 3: arbitrary binary trees into hypercubes, load 16")
	fmt.Printf("%12s %8s %6s %9s %6s\n", "family", "n", "cube", "dilation", "load")
	for _, f := range xtreesim.Families {
		// n = 16·(2^6 − 1): fills X(5), lands in Q_6.
		n := int(xtreesim.Capacity(5))
		tree, err := xtreesim.GenerateTree(f, n, 3)
		if err != nil {
			log.Fatal(err)
		}
		res, err := xtreesim.Embed(tree)
		if err != nil {
			log.Fatal(err)
		}
		hc := xtreesim.EmbedHypercube(res)
		rep := hc.Embedding().Summarize()
		fmt.Printf("%12s %8d %6s %9d %6d\n",
			f, n, fmt.Sprintf("Q_%d", hc.Host.Dim()), rep.Dilation, rep.MaxLoad)
	}

	// The corollary after Theorem 3: injective hypercube embeddings with
	// constant dilation for every binary tree.
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyBST, int(xtreesim.Capacity(4)), 5)
	if err != nil {
		log.Fatal(err)
	}
	res, err := xtreesim.Embed(tree)
	if err != nil {
		log.Fatal(err)
	}
	inj, err := xtreesim.EmbedInjective(res)
	if err != nil {
		log.Fatal(err)
	}
	ihc := xtreesim.InjectiveHypercubeOf(inj)
	rep := ihc.Embedding().Summarize()
	fmt.Printf("\ninjective corollary: n=%d into Q_%d, dilation=%d, injective=%v\n",
		tree.N(), ihc.Host.Dim(), rep.Dilation, rep.Injective)
}
