// Command universal demonstrates Theorem 4: one fixed graph G_n of degree
// at most 415 contains EVERY n-node binary tree as a spanning tree.  It
// builds G_496 (n = 2^9 − 16), embeds one tree from every generator family
// as a spanning tree, and verifies each embedding edge by edge.
package main

import (
	"fmt"
	"log"

	"xtreesim"
)

func main() {
	const n = 496 // 2^9 − 16, an admissible Theorem 4 size
	ug, err := xtreesim.NewUniversalGraph(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G_%d: %d vertices, %d edges, max degree %d (bound %d)\n",
		n, ug.N(), ug.G.M(), ug.MaxDegree(), xtreesim.UniversalDegreeBound)

	for _, f := range xtreesim.Families {
		tree, err := xtreesim.GenerateTree(f, n, 1991)
		if err != nil {
			log.Fatal(err)
		}
		assign, err := ug.Embed(tree)
		if err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		if err := ug.IsSpanning(tree, assign); err != nil {
			log.Fatalf("%s: %v", f, err)
		}
		fmt.Printf("  %-12s spanning tree verified (height %d)\n", f, tree.Height())
	}
	fmt.Println("every family realized inside the same fixed host graph")

	// The arbitrary-n generalization the paper sketches after Theorem 4:
	// trees of ANY size up to the capacity are subgraphs of the same G.
	fmt.Println("\narbitrary sizes as subgraphs of the same G:")
	for _, m := range []int{1, 10, 100, 333, n} {
		tree, err := xtreesim.GenerateTree(xtreesim.FamilyRandom, m, int64(m))
		if err != nil {
			log.Fatal(err)
		}
		assign, err := ug.EmbedAny(tree)
		if err != nil {
			log.Fatalf("n=%d: %v", m, err)
		}
		if err := ug.IsSubgraph(tree, assign); err != nil {
			log.Fatalf("n=%d: %v", m, err)
		}
		fmt.Printf("  n=%-4d subgraph verified\n", m)
	}
}
