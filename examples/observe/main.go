// Command observe demonstrates the simulator's observability layer on the
// divide-and-conquer program running through the Monien embedding.  Three
// observers attach to one run: LinkAudit re-proves the model invariants
// (one hop per link and per message per cycle, counter conservation)
// every cycle; TimeSeries records how the message wave builds and drains;
// TraceRecorder captures every event and exports a Chrome trace for
// chrome://tracing or https://ui.perfetto.dev.  Observers are read-only:
// the Result is byte-identical with or without them.
package main

import (
	"fmt"
	"log"
	"os"

	"xtreesim"
)

func main() {
	tree, err := xtreesim.GenerateTree(xtreesim.FamilyRandom, 1008, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := xtreesim.Embed(tree)
	if err != nil {
		log.Fatal(err)
	}

	audit := xtreesim.NewLinkAudit()
	series := xtreesim.NewTimeSeries()
	trace := xtreesim.NewTraceRecorder()
	sim, err := xtreesim.SimulateOnXTree(res, xtreesim.NewDivideConquer(tree, 1),
		xtreesim.WithObserver(audit, series), xtreesim.WithTrace(trace))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run: %d cycles, %d messages delivered, %d link hops\n",
		sim.Cycles, sim.Delivered, sim.HopsTotal)
	if err := audit.Err(); err != nil {
		log.Fatalf("invariant audit: %v", err)
	}
	fmt.Printf("audit: ok — every cycle respected one hop per link and per message,\n")
	fmt.Printf("       and emitted = delivered + unreachable + inflight throughout\n\n")

	// The shape of the run over time, coarsened to ~12 buckets.
	fmt.Println("cycle  inflight  on links  utilization")
	step := len(series.Samples)/12 + 1
	for i := 0; i < len(series.Samples); i += step {
		s := series.Samples[i]
		fmt.Printf("%5d  %8d  %8d  %10.0f%%\n",
			s.Cycle, s.Inflight, s.QueuedLinks, 100*s.Utilization())
	}
	fmt.Printf("peak: %d messages in flight, %.0f%% of links busy in one cycle\n\n",
		series.PeakInflight(), 100*series.PeakUtilization())

	out := "observe-trace.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d events exported to %s (open in chrome://tracing)\n",
		len(trace.Events()), out)
}
