// Command simulate runs the paper's motivating scenario end to end: a
// divide-and-conquer program written for a binary-tree machine executes on
// a simulated X-tree machine through (a) the Monien embedding and (b) a
// naive packing, and the makespans are compared against the ideal
// binary-tree machine.  The Monien embedding's slowdown stays a small
// constant; the naive packing's grows with the machine size.
package main

import (
	"fmt"
	"log"

	"xtreesim"

	"xtreesim/internal/netsim"
)

func main() {
	fmt.Println("divide-and-conquer on the simulated X-tree machine")
	fmt.Println("family=complete (latency-bound: the dilation shows), one wave per run")
	fmt.Printf("%8s %10s %10s %10s %12s %12s\n",
		"n", "ideal", "monien", "dfs-pack", "slow(monien)", "slow(dfs)")
	for r := 3; r <= 7; r++ {
		n := int(xtreesim.Capacity(r))
		tree, err := xtreesim.GenerateTree(xtreesim.FamilyComplete, n, 7)
		if err != nil {
			log.Fatal(err)
		}

		ideal, err := xtreesim.SimulateOnTree(tree, xtreesim.NewDivideConquer(tree, 1))
		if err != nil {
			log.Fatal(err)
		}

		res, err := xtreesim.Embed(tree)
		if err != nil {
			log.Fatal(err)
		}
		monien, err := xtreesim.SimulateOnXTree(res, xtreesim.NewDivideConquer(tree, 1))
		if err != nil {
			log.Fatal(err)
		}

		base, err := xtreesim.Baseline(tree, xtreesim.MethodDFSPack)
		if err != nil {
			log.Fatal(err)
		}
		place := make([]int32, tree.N())
		for v, a := range base.Assignment {
			place[v] = int32(a.ID())
		}
		dfs, err := xtreesim.Simulate(netsim.Config{
			Host:  base.Host.AsGraph(),
			Place: place,
		}, xtreesim.NewDivideConquer(tree, 1))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%8d %10d %10d %10d %12.2f %12.2f\n",
			n, ideal.Cycles, monien.Cycles, dfs.Cycles,
			float64(monien.Cycles)/float64(ideal.Cycles),
			float64(dfs.Cycles)/float64(ideal.Cycles))
	}

	fmt.Println("\npipelined waves (congestion test), n = 1008:")
	tree, _ := xtreesim.GenerateTree(xtreesim.FamilyRandom, 1008, 9)
	res, err := xtreesim.Embed(tree)
	if err != nil {
		log.Fatal(err)
	}
	for _, waves := range []int{1, 2, 4, 8} {
		ideal, err := xtreesim.SimulateOnTree(tree, xtreesim.NewDivideConquer(tree, waves))
		if err != nil {
			log.Fatal(err)
		}
		host, err := xtreesim.SimulateOnXTree(res, xtreesim.NewDivideConquer(tree, waves))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  waves=%d ideal=%d xtree=%d slowdown=%.2f maxqueue=%d\n",
			waves, ideal.Cycles, host.Cycles,
			float64(host.Cycles)/float64(ideal.Cycles), host.MaxQueue)
	}
}
