// Command serve is the minimal client for the embedding service: it
// boots a server in-process on an ephemeral port, embeds one tree over
// the wire with plain JSON (the same bytes any curl or non-Go client
// would send), runs one simulation, and scrapes /metrics.  See the
// README "Serving" section for the equivalent curl invocations against
// a standalone `xtree-serve` process.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"xtreesim"
)

func main() {
	srv := xtreesim.NewServer(xtreesim.ServerConfig{})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := srv.URL()
	fmt.Printf("server up at %s\n\n", url)

	// One embed: a random 1008-node binary tree onto its X-tree host.
	var embed struct {
		Items []struct {
			N            int     `json:"n"`
			Host         string  `json:"host"`
			HostVertices int     `json:"host_vertices"`
			Height       int     `json:"height"`
			Dilation     int     `json:"dilation"`
			AvgDilation  float64 `json:"avg_dilation"`
			MaxLoad      int     `json:"max_load"`
			Expansion    float64 `json:"expansion"`
			CacheHit     bool    `json:"cache_hit"`
		} `json:"items"`
	}
	post(url+"/v1/embed", `{"tree": {"family": "random", "n": 1008, "seed": 42}}`, &embed)
	it := embed.Items[0]
	fmt.Printf("POST /v1/embed: n=%d onto %s X(%d) (%d vertices)\n",
		it.N, it.Host, it.Height, it.HostVertices)
	fmt.Printf("  dilation=%d (avg %.2f)  load=%d  expansion=%.2f  cache_hit=%v\n",
		it.Dilation, it.AvgDilation, it.MaxLoad, it.Expansion, it.CacheHit)
	fmt.Printf("  Theorem 1 bounds over the wire: dilation ≤ 3 is %v, load ≤ 16 is %v\n\n",
		it.Dilation <= 3, it.MaxLoad <= 16)

	// One simulation: divide-and-conquer through the same embedding.
	var sim struct {
		Sim struct {
			Cycles    int `json:"cycles"`
			Delivered int `json:"delivered"`
		} `json:"sim"`
		IdealCycles int     `json:"ideal_cycles"`
		Slowdown    float64 `json:"slowdown"`
	}
	post(url+"/v1/simulate",
		`{"tree": {"family": "random", "n": 1008, "seed": 42},
		  "workload": "divide-conquer", "baseline": true}`, &sim)
	fmt.Printf("POST /v1/simulate: %d cycles, %d delivered, slowdown %.2fx vs ideal %d\n\n",
		sim.Sim.Cycles, sim.Sim.Delivered, sim.Slowdown, sim.IdealCycles)

	// Scrape /metrics and show the serving counters this session moved.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("GET /metrics (excerpt):")
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "xtreesim_http_requests_total") ||
			strings.HasPrefix(line, "xtreesim_engine_cache") {
			fmt.Println("  " + line)
		}
	}
}

func post(url, body string, out interface{}) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		log.Fatalf("POST %s: %d: %s", url, resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("decode %s: %v", url, err)
	}
}
